package syntax

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens of the XPath 1.0 grammar.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokLiteral  // quoted string
	tokName     // NCName (possibly an axis, function or operator name)
	tokVariable // $name
	tokSlash
	tokDoubleSlash
	tokUnion // |
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokStar // wildcard or multiply, disambiguated by the parser
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokDotDot
	tokAt
	tokAxisSep // ::
	tokAnd     // operator-name tokens produced by the disambiguation rule
	tokOr
	tokDiv
	tokMod
)

// token is a single lexical token with its source position for error
// reporting. For '*' tokens, isOp records how the disambiguation rule
// resolved it (multiply operator vs. wildcard): the resolution of the
// *next* token depends on it.
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
	isOp bool
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return strconv.FormatFloat(t.num, 'f', -1, 64)
	case tokLiteral:
		return `"` + t.text + `"`
	default:
		return t.text
	}
}

// lexer tokenizes an XPath 1.0 expression, implementing the REC's lexical
// disambiguation rules:
//
//   - if there is a preceding token, and it is none of @, ::, (, [, an
//     operator, 'and'/'or'/'div'/'mod', then '*' is the multiply operator
//     and an NCName must be recognized as an operator name;
//   - an NCName followed by '(' is a function name (node-type names are
//     resolved by the parser);
//   - an NCName followed by '::' is an axis name (resolved by the parser).
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole expression up front; XPath expressions are short
// (|Q| ≪ |D|), so a token slice keeps the parser simple and allows
// arbitrary lookahead.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

// precedesOperatorBefore reports how the token being emitted right now is
// classified by the rule (the current token is not yet in l.toks).
func (l *lexer) precedesOperatorBefore() bool { return l.precedesOperator() }

// precedesOperator reports whether, per the disambiguation rule, the last
// emitted token forces the next '*' / NCName to be read as an operator.
func (l *lexer) precedesOperator() bool {
	if len(l.toks) == 0 {
		return false
	}
	last := l.toks[len(l.toks)-1]
	switch last.kind {
	case tokAt, tokAxisSep, tokLParen, tokLBracket, tokComma,
		tokAnd, tokOr, tokDiv, tokMod,
		tokSlash, tokDoubleSlash, tokUnion, tokPlus, tokMinus,
		tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return false
	case tokStar:
		// A '*' resolved as the multiply operator behaves like any other
		// operator (an operand follows); a wildcard node test completes an
		// expression, so an NCName after it must be an operator name.
		return !last.isOp
	}
	return true
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	emit := func(k tokenKind, n int) (token, error) {
		t := token{kind: k, text: l.src[start : start+n], pos: start}
		l.pos += n
		return t, nil
	}
	switch c {
	case '(':
		return emit(tokLParen, 1)
	case ')':
		return emit(tokRParen, 1)
	case '[':
		return emit(tokLBracket, 1)
	case ']':
		return emit(tokRBracket, 1)
	case ',':
		return emit(tokComma, 1)
	case '@':
		return emit(tokAt, 1)
	case '|':
		return emit(tokUnion, 1)
	case '+':
		return emit(tokPlus, 1)
	case '-':
		return emit(tokMinus, 1)
	case '=':
		return emit(tokEq, 1)
	case '!':
		if l.peekAt(1) == '=' {
			return emit(tokNeq, 2)
		}
		return token{}, fmt.Errorf("syntax: offset %d: '!' must be followed by '='", start)
	case '<':
		if l.peekAt(1) == '=' {
			return emit(tokLe, 2)
		}
		return emit(tokLt, 1)
	case '>':
		if l.peekAt(1) == '=' {
			return emit(tokGe, 2)
		}
		return emit(tokGt, 1)
	case '*':
		t, err := emit(tokStar, 1)
		t.isOp = l.precedesOperatorBefore()
		return t, err
	case '/':
		if l.peekAt(1) == '/' {
			return emit(tokDoubleSlash, 2)
		}
		return emit(tokSlash, 1)
	case ':':
		if l.peekAt(1) == ':' {
			return emit(tokAxisSep, 2)
		}
		return token{}, fmt.Errorf("syntax: offset %d: unexpected ':' (namespace-qualified names are outside the paper's data model)", start)
	case '.':
		if l.peekAt(1) == '.' {
			return emit(tokDotDot, 2)
		}
		if isDigit(l.peekAt(1)) {
			return l.lexNumber()
		}
		return emit(tokDot, 1)
	case '"', '\'':
		end := strings.IndexByte(l.src[l.pos+1:], c)
		if end < 0 {
			return token{}, fmt.Errorf("syntax: offset %d: unterminated string literal", start)
		}
		t := token{kind: tokLiteral, text: l.src[l.pos+1 : l.pos+1+end], pos: start}
		l.pos += end + 2
		return t, nil
	case '$':
		l.pos++
		name := l.lexNCName()
		if name == "" {
			return token{}, fmt.Errorf("syntax: offset %d: '$' must be followed by a variable name", start)
		}
		return token{kind: tokVariable, text: name, pos: start}, nil
	}
	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameStart(rune(c)) {
		name := l.lexNCName()
		if l.precedesOperator() {
			switch name {
			case "and":
				return token{kind: tokAnd, text: name, pos: start}, nil
			case "or":
				return token{kind: tokOr, text: name, pos: start}, nil
			case "div":
				return token{kind: tokDiv, text: name, pos: start}, nil
			case "mod":
				return token{kind: tokMod, text: name, pos: start}, nil
			}
			return token{}, fmt.Errorf("syntax: offset %d: expected an operator, found %q", start, name)
		}
		return token{kind: tokName, text: name, pos: start}, nil
	}
	return token{}, fmt.Errorf("syntax: offset %d: unexpected character %q", start, string(c))
}

// lexNumber scans an XPath Number: Digits ('.' Digits?)? | '.' Digits.
// There is no exponent form in XPath 1.0.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("syntax: offset %d: bad number %q", start, text)
	}
	return token{kind: tokNumber, text: text, num: v, pos: start}, nil
}

// lexNCName scans an NCName (letters, digits, '-', '_', '.'; no colon).
// '.' is included per the XML Name grammar; the caller has already handled
// leading '.' tokens, and a trailing '.' never starts a Name continuation
// ambiguity in XPath since abbreviated steps are tokenized first.
func (l *lexer) lexNCName() string {
	start := l.pos
	if l.pos >= len(l.src) || !isNameStart(rune(l.src[l.pos])) {
		return ""
	}
	l.pos++
	for l.pos < len(l.src) && isNameChar(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
