package syntax

import (
	"strconv"
	"strings"
)

// String renders the numeric literal the way XPath's to_string would.
func (e *NumberLit) String() string {
	return strconv.FormatFloat(e.Val, 'f', -1, 64)
}

// String renders the string literal, choosing a quote character that does
// not occur in the value (XPath has no escapes inside literals).
func (e *StringLit) String() string {
	if !strings.Contains(e.Val, `"`) {
		return `"` + e.Val + `"`
	}
	return "'" + e.Val + "'"
}

// String renders the binary expression fully parenthesized, which is always
// re-parseable and keeps operator precedence unambiguous in table dumps.
func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// String renders unary minus.
func (e *Negate) String() string { return "-(" + e.E.String() + ")" }

// String renders the function call.
func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Fn.String() + "(" + strings.Join(parts, ", ") + ")"
}

// String renders the union of paths.
func (e *Union) String() string {
	parts := make([]string, len(e.Paths))
	for i, p := range e.Paths {
		parts[i] = p.String()
	}
	return strings.Join(parts, " | ")
}

// String renders the path in unabbreviated syntax.
func (e *Path) String() string {
	var b strings.Builder
	switch {
	case e.Filter != nil:
		b.WriteString(e.Filter.String())
		for _, p := range e.FPreds {
			b.WriteString("[")
			b.WriteString(p.String())
			b.WriteString("]")
		}
		if len(e.Steps) > 0 {
			b.WriteString("/")
		}
	case e.Abs:
		b.WriteString("/")
	}
	for i, s := range e.Steps {
		if i > 0 {
			b.WriteString("/")
		}
		b.WriteString(s.String())
	}
	return b.String()
}
