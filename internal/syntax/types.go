// Package syntax implements XPath 1.0 syntax processing for the paper's
// algorithms: a lexer and parser for the full XPath 1.0 expression grammar
// (abbreviated and unabbreviated forms), a normalization pass that makes all
// type conversions explicit as Section 2.2 assumes, the relevant-context
// analysis Relev(N) of Section 3.1, and the fragment classifiers for
// Core XPath (Definition 12) and the Extended Wadler Fragment (Section 4,
// Restrictions 1–3).
//
// Every normalized expression node carries a dense ID; the evaluation
// engines index their context-value tables table(N) by it, mirroring the
// paper's per-parse-tree-node tables.
package syntax

import (
	"fmt"
	"strings"

	"repro/internal/axes"
)

// Type is the static type of an XPath 1.0 expression: one of the four
// expression types of Section 2.2.
type Type int

// The four XPath 1.0 expression types.
const (
	TypeNodeSet Type = iota
	TypeNumber
	TypeString
	TypeBoolean
)

// String returns the paper's abbreviation for the type.
func (t Type) String() string {
	switch t {
	case TypeNodeSet:
		return "nset"
	case TypeNumber:
		return "num"
	case TypeString:
		return "str"
	case TypeBoolean:
		return "bool"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Expr is a node of the normalized parse tree T. Engines dispatch on the
// concrete type; ID gives the node's index into per-query table arrays.
type Expr interface {
	// ID returns the node's dense parse-tree identifier (assigned by
	// Compile; -1 before that).
	ID() int
	// ResultType returns the expression's static XPath type.
	ResultType() Type
	// String renders the subexpression in unabbreviated XPath syntax.
	String() string

	setID(int)
	children() []Expr
}

// Children returns the expression's direct subexpressions — the exported
// form of the parse-tree walk, for sibling packages analyzing query shapes
// (the parallel evaluator's partitionability check).
func Children(e Expr) []Expr { return e.children() }

// base carries the bookkeeping shared by all expression kinds.
type base struct {
	id int
}

func (b *base) ID() int     { return b.id }
func (b *base) setID(i int) { b.id = i }

// NumberLit is a numeric constant (IEEE 754 double, as all XPath numbers).
type NumberLit struct {
	base
	Val float64
}

// ResultType implements Expr.
func (*NumberLit) ResultType() Type   { return TypeNumber }
func (e *NumberLit) children() []Expr { return nil }

// StringLit is a string constant.
type StringLit struct {
	base
	Val string
}

// ResultType implements Expr.
func (*StringLit) ResultType() Type   { return TypeString }
func (e *StringLit) children() []Expr { return nil }

// BinOp enumerates the binary operators of XPath 1.0.
type BinOp int

// Binary operators, grouped: boolean connectives, equality, relational,
// arithmetic.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var binOpNames = [...]string{
	OpOr: "or", OpAnd: "and",
	OpEq: "=", OpNeq: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpMod: "mod",
}

// String returns the operator's XPath spelling.
func (op BinOp) String() string { return binOpNames[op] }

// IsRelational reports whether the operator is one of the RelOps of
// Figure 1 (=, !=, <, <=, >, >=).
func (op BinOp) IsRelational() bool { return op >= OpEq && op <= OpGe }

// IsEquality reports whether the operator is = or != (the EqOp cases of
// Figure 1).
func (op BinOp) IsEquality() bool { return op == OpEq || op == OpNeq }

// IsArithmetic reports whether the operator is one of +, -, *, div, mod.
func (op BinOp) IsArithmetic() bool { return op >= OpAdd }

// Mirror returns the operator with swapped operands
// (a op b  ⇔  b op.Mirror() a).
func (op BinOp) Mirror() BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// Binary is the application of a binary operator. Relational operators
// over node sets keep the existential semantics of Figure 1; they are not
// decomposed further by normalization.
type Binary struct {
	base
	Op   BinOp
	L, R Expr
}

// ResultType implements Expr.
func (e *Binary) ResultType() Type {
	if e.Op.IsArithmetic() {
		return TypeNumber
	}
	return TypeBoolean
}
func (e *Binary) children() []Expr { return []Expr{e.L, e.R} }

// Negate is unary minus.
type Negate struct {
	base
	E Expr
}

// ResultType implements Expr.
func (*Negate) ResultType() Type   { return TypeNumber }
func (e *Negate) children() []Expr { return []Expr{e.E} }

// Func identifies an XPath 1.0 core-library function.
type Func int

// The XPath 1.0 core function library, minus the namespace functions the
// paper excludes (§2.1). Last and Position are the context functions of
// Definition 2; the rest implement the effective semantics function F of
// Figure 1 and the string/number operations it omits for lack of space.
const (
	FnLast Func = iota
	FnPosition
	FnCount
	FnID
	FnLocalName
	FnName
	FnString
	FnConcat
	FnStartsWith
	FnContains
	FnSubstringBefore
	FnSubstringAfter
	FnSubstring
	FnStringLength
	FnNormalizeSpace
	FnTranslate
	FnBoolean
	FnNot
	FnTrue
	FnFalse
	FnLang
	FnNumber
	FnSum
	FnFloor
	FnCeiling
	FnRound
)

var funcNames = [...]string{
	FnLast: "last", FnPosition: "position", FnCount: "count", FnID: "id",
	FnLocalName: "local-name", FnName: "name", FnString: "string",
	FnConcat: "concat", FnStartsWith: "starts-with", FnContains: "contains",
	FnSubstringBefore: "substring-before", FnSubstringAfter: "substring-after",
	FnSubstring: "substring", FnStringLength: "string-length",
	FnNormalizeSpace: "normalize-space", FnTranslate: "translate",
	FnBoolean: "boolean", FnNot: "not", FnTrue: "true", FnFalse: "false",
	FnLang: "lang", FnNumber: "number", FnSum: "sum", FnFloor: "floor",
	FnCeiling: "ceiling", FnRound: "round",
}

// String returns the function's XPath name.
func (f Func) String() string { return funcNames[f] }

// FuncByName resolves an XPath function name; ok is false for unknown names.
func FuncByName(name string) (Func, bool) {
	for f, n := range funcNames {
		if n == name {
			return Func(f), true
		}
	}
	return 0, false
}

// resultType returns the function's static result type.
func (f Func) resultType() Type {
	switch f {
	case FnLast, FnPosition, FnCount, FnStringLength, FnNumber, FnSum,
		FnFloor, FnCeiling, FnRound:
		return TypeNumber
	case FnID:
		return TypeNodeSet
	case FnLocalName, FnName, FnString, FnConcat, FnSubstringBefore,
		FnSubstringAfter, FnSubstring, FnNormalizeSpace, FnTranslate:
		return TypeString
	case FnBoolean, FnNot, FnTrue, FnFalse, FnLang, FnStartsWith, FnContains:
		return TypeBoolean
	}
	panic("syntax: resultType: unknown function " + f.String())
}

// Call is a core-library function call. After normalization, id() calls with
// node-set arguments have been rewritten into id-axis location steps (§4),
// so a surviving FnID call always has a string-typed argument.
type Call struct {
	base
	Fn   Func
	Args []Expr
}

// ResultType implements Expr.
func (e *Call) ResultType() Type { return e.Fn.resultType() }
func (e *Call) children() []Expr { return e.Args }

// Union is the "|" combination of location paths (S↓[[π1 | π2]] of
// Definition 2), flattened to n-ary form by normalization.
type Union struct {
	base
	Paths []Expr // each of type nset
}

// ResultType implements Expr.
func (*Union) ResultType() Type   { return TypeNodeSet }
func (e *Union) children() []Expr { return e.Paths }

// NodeTestKind classifies a node test t.
type NodeTestKind int

// Node test kinds: a literal tag name, the "*" wildcard (T(*) = dom), or
// node() which additionally matches the document root.
const (
	TestName NodeTestKind = iota
	TestStar
	TestNode
)

// NodeTest is the node test of a location step.
type NodeTest struct {
	Kind NodeTestKind
	Name string // tag name when Kind == TestName
}

// String returns the node test's XPath spelling.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestStar:
		return "*"
	default:
		return "node()"
	}
}

// Step is one location step χ::t[e1]…[em]. A Step is itself an Expr (the
// paper's parse tree gives each location step its own node, with
// Relev = {cn}); its ID is what the engines key step tables on.
type Step struct {
	base
	Axis  axes.Axis
	Test  NodeTest
	Preds []Expr
}

// ResultType implements Expr.
func (*Step) ResultType() Type   { return TypeNodeSet }
func (e *Step) children() []Expr { return e.Preds }

// String renders the step in unabbreviated syntax.
func (e *Step) String() string {
	var b strings.Builder
	if e.Axis == axes.ID {
		b.WriteString("id") // the id-"axis" of §4 has no axis::test form
	} else {
		b.WriteString(e.Axis.String())
		b.WriteString("::")
		b.WriteString(e.Test.String())
	}
	for _, p := range e.Preds {
		b.WriteString("[")
		b.WriteString(p.String())
		b.WriteString("]")
	}
	return b.String()
}

// Path is a location path: an optional head (either the document root for
// absolute paths, or a filter expression such as a parenthesized expression
// or an id(string) call) followed by location steps.
//
// Exactly one of Abs/Filter may be set; when both are unset the path is
// relative and starts at the context node.
type Path struct {
	base
	Abs    bool
	Filter Expr   // non-nil for FilterExpr-headed paths
	FPreds []Expr // predicates applied to the filter result (document order)
	Steps  []*Step
}

// ResultType implements Expr.
func (*Path) ResultType() Type { return TypeNodeSet }
func (e *Path) children() []Expr {
	var out []Expr
	if e.Filter != nil {
		out = append(out, e.Filter)
	}
	out = append(out, e.FPreds...)
	for _, s := range e.Steps {
		out = append(out, s)
	}
	return out
}

// IsPureSteps reports whether the path consists of location steps only
// (absolute or relative, no filter head) — the location-path shape the
// bottom-up evaluation of Section 4 handles.
func (e *Path) IsPureSteps() bool { return e.Filter == nil }

// VarBinding is the value bound to an XPath variable. Per Section 2.2, each
// variable is replaced by the constant value of the input binding at compile
// time; bindings are scalar (node-set variables are outside the paper's
// scope and are rejected by Compile).
type VarBinding struct {
	Type Type
	Num  float64
	Str  string
	Bool bool
}

// NumberVar, StringVar and BoolVar build scalar variable bindings.
func NumberVar(v float64) VarBinding { return VarBinding{Type: TypeNumber, Num: v} }

// StringVar builds a string-typed variable binding.
func StringVar(s string) VarBinding { return VarBinding{Type: TypeString, Str: s} }

// BoolVar builds a boolean-typed variable binding.
func BoolVar(b bool) VarBinding { return VarBinding{Type: TypeBoolean, Bool: b} }
