package syntax

import (
	"strings"
	"testing"
)

// TestFigure6TreeShape checks the parse tree of the Example 9 query against
// the paper's Figure 6: the node kinds and their Relev annotations.
func TestFigure6TreeShape(t *testing.T) {
	q, err := Compile(`/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]`)
	if err != nil {
		t.Fatal(err)
	}
	out := q.TreeString()
	for _, want := range []string{
		"path (absolute)",
		"step child::a",
		"step descendant::*",
		"boolean()",
		"step following::d",
		"and",
		"position()",
		"last()",
		"step preceding-sibling::*",
		"step preceding::*",
		"Relev={cn,cp,cs}", // the 'and' node N5 of Figure 6
		"Relev={cp,cs}",    // position() != last()
		"Relev=∅",          // the constant 100
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// Figure 6 has 13 named nodes plus the implicit unary ones; our
	// normalized tree must have one line per parse node.
	if got := strings.Count(out, "N"); got < q.Size() {
		t.Errorf("tree shows %d nodes, query has %d", got, q.Size())
	}
}

func TestWriteDot(t *testing.T) {
	q, err := Compile(`//a[b = 1]`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := q.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph parsetree {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a DOT digraph:\n%s", out)
	}
	// One declared node and one edge per parent-child pair.
	if got := strings.Count(out, "->"); got != q.Size()-1 {
		t.Errorf("%d edges, want %d", got, q.Size()-1)
	}
	for i := 0; i < q.Size(); i++ {
		if !strings.Contains(out, "n"+itoa(i)+" [label=") {
			t.Errorf("node n%d not declared", i)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestTreeStringAbbreviates(t *testing.T) {
	long := `//a[` + strings.Repeat(`b/`, 40) + `c]`
	q, err := Compile(long)
	if err != nil {
		t.Fatal(err)
	}
	out := q.TreeString()
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 250 {
			t.Errorf("line too long (%d bytes): %s", len(line), line[:80])
		}
	}
}
