package syntax

import (
	"repro/internal/axes"
)

// Fragment classifies a query into the paper's efficiency classes.
type Fragment int

// Fragments ordered from most to least restrictive; Core XPath is contained
// in the Extended Wadler Fragment (proof sketch of Theorem 13).
const (
	// FragmentCoreXPath: Definition 12 — location paths whose predicates
	// are and/or/not combinations of location paths. Evaluable in
	// O(|D|·|Q|) time.
	FragmentCoreXPath Fragment = iota
	// FragmentExtendedWadler: Section 4, Restrictions 1–3. Evaluable in
	// O(|D|²·|Q|²) time and O(|D|·|Q|²) space (Theorem 10).
	FragmentExtendedWadler
	// FragmentFullXPath: everything else; MINCONTEXT bounds apply
	// (Theorem 7).
	FragmentFullXPath
)

// String names the fragment.
func (f Fragment) String() string {
	switch f {
	case FragmentCoreXPath:
		return "core-xpath"
	case FragmentExtendedWadler:
		return "extended-wadler"
	default:
		return "full-xpath"
	}
}

// classify determines the most restrictive fragment containing the query.
func classify(q *Query) Fragment {
	if isCoreXPath(q.Root) {
		return FragmentCoreXPath
	}
	if isExtendedWadler(q) {
		return FragmentExtendedWadler
	}
	return FragmentFullXPath
}

// isCoreXPath checks the query against the abstract grammar of
// Definition 12, on the normalized tree: "cxp" is a location path of plain
// steps; predicates are and/or/not combinations of boolean(cxp) (the
// normalized spelling of the definition's bare "cxp" predicates).
func isCoreXPath(e Expr) bool {
	p, ok := e.(*Path)
	return ok && isCorePath(p)
}

func isCorePath(p *Path) bool {
	if p.Filter != nil || len(p.FPreds) != 0 {
		return false
	}
	if !p.Abs && len(p.Steps) == 0 {
		return false
	}
	for _, s := range p.Steps {
		if s.Axis == axes.ID {
			return false
		}
		for _, pred := range s.Preds {
			if !isCorePred(pred) {
				return false
			}
		}
	}
	return true
}

func isCorePred(e Expr) bool {
	switch e := e.(type) {
	case *Binary:
		return (e.Op == OpAnd || e.Op == OpOr) && isCorePred(e.L) && isCorePred(e.R)
	case *Call:
		switch e.Fn {
		case FnNot:
			return isCorePred(e.Args[0])
		case FnBoolean:
			p, ok := e.Args[0].(*Path)
			return ok && isCorePath(p)
		}
	case *Path:
		// Un-normalized bare path predicate (Definition 12's "cxp").
		return isCorePath(e)
	}
	return false
}

// isExtendedWadler checks Restrictions 1–3 of Section 4 plus the positional
// constraint of Corollary 11: every node-set subexpression occurs either as
// the whole query, under boolean(π), or as π RelOp s with a
// context-independent scalar s.
func isExtendedWadler(q *Query) bool {
	var okExpr func(e Expr, nsetAllowed bool) bool

	okScalarOperand := func(e Expr) bool {
		// Restriction 2/3: the scalar must not depend on any context.
		return q.Relev[e.ID()] == 0
	}

	okPathInternals := func(p *Path) bool {
		if p.Filter != nil {
			// Restriction 3 admits id(s)-headed paths when s is
			// context-independent (the id(id(…(s)…)) case of §4, with the
			// inner id() calls already rewritten into id-axis steps).
			c, ok := p.Filter.(*Call)
			if !ok || c.Fn != FnID || len(p.FPreds) != 0 || q.Relev[p.Filter.ID()] != 0 {
				return false
			}
		}
		for _, s := range p.Steps {
			for _, pred := range s.Preds {
				if !okExpr(pred, false) {
					return false
				}
			}
		}
		return true
	}

	okExpr = func(e Expr, nsetAllowed bool) bool {
		switch e := e.(type) {
		case *NumberLit, *StringLit:
			return true
		case *Negate:
			return okExpr(e.E, false)
		case *Binary:
			if e.Op.IsRelational() {
				lN := e.L.ResultType() == TypeNodeSet
				rN := e.R.ResultType() == TypeNodeSet
				switch {
				case lN && rN:
					return false // Restriction 2: nset RelOp nset
				case lN:
					p, ok := e.L.(*Path)
					return ok && okPathInternals(p) && okScalarOperand(e.R) && okExpr(e.R, false)
				case rN:
					p, ok := e.R.(*Path)
					return ok && okPathInternals(p) && okScalarOperand(e.L) && okExpr(e.L, false)
				}
			}
			return okExpr(e.L, false) && okExpr(e.R, false)
		case *Call:
			switch e.Fn {
			case FnLocalName, FnName, FnString, FnNumber, FnStringLength,
				FnNormalizeSpace:
				return false // Restriction 1: data-selecting functions
			case FnCount, FnSum:
				return false // Restriction 2
			case FnID:
				// Restriction 3: id(s) with context-independent s. (id with
				// node-set argument was rewritten to a path by
				// normalization, so the argument here is scalar.)
				return okScalarOperand(e.Args[0]) && okExpr(e.Args[0], false)
			case FnBoolean:
				if p, ok := e.Args[0].(*Path); ok {
					return okPathInternals(p)
				}
				return okExpr(e.Args[0], false)
			}
			for _, a := range e.Args {
				if a.ResultType() == TypeNodeSet {
					return false
				}
				if !okExpr(a, false) {
					return false
				}
			}
			return true
		case *Union:
			if !nsetAllowed {
				return false
			}
			for _, p := range e.Paths {
				pp, ok := p.(*Path)
				if !ok || !okPathInternals(pp) {
					return false
				}
			}
			return true
		case *Path:
			return nsetAllowed && okPathInternals(e)
		case *Step:
			return false // steps are reached via okPathInternals only
		}
		return false
	}

	return okExpr(q.Root, true)
}

// findBottomUpPaths returns, innermost-first, the IDs of the subexpressions
// that OPTMINCONTEXT (Algorithm 8) evaluates bottom-up: boolean(π) and
// π RelOp s nodes where π is a pure location path (named axes and the
// id-axis) and s is a context-independent expression of type nset, str or
// num. (π RelOp bool was already rewritten to boolean(π) RelOp bool by
// normalization, matching the treatment in Section 4.)
func findBottomUpPaths(q *Query) []int {
	var out []int
	var walk func(e Expr)
	eligible := func(e Expr) (*Path, bool) {
		switch e := e.(type) {
		case *Call:
			if e.Fn == FnBoolean {
				if p, ok := e.Args[0].(*Path); ok && p.IsPureSteps() {
					return p, true
				}
			}
		case *Binary:
			if p, _, ok := q.bottomUpOperands(e); ok {
				return p, true
			}
		}
		return nil, false
	}
	walk = func(e Expr) {
		// Post-order: children first, so nested bottom-up paths (e.g. inside
		// predicates of π) are listed before their enclosing expression —
		// the "starting with the innermost ones" order of Algorithm 8.
		for _, c := range e.children() {
			walk(c)
		}
		if _, ok := eligible(e); ok {
			out = append(out, e.ID())
		}
	}
	walk(q.Root)
	return out
}

// bottomUpOperands decomposes a relational expression into the location
// path π and the context-independent operand s of the π RelOp s shape
// handled by eval_bottomup_path. The left operand is preferred as the path
// when both sides qualify; the returned operator reads left-to-right with π
// on the left. s may itself be of type nset when context-independent (e.g.
// id("k")) — the nset case of the pseudo-code's step 1. Comparisons against
// booleans were rewritten to boolean(π) RelOp b by normalization and are
// not bottom-up shapes here.
func (q *Query) bottomUpOperands(e *Binary) (pi *Path, op BinOp, ok bool) {
	if !e.Op.IsRelational() {
		return nil, 0, false
	}
	qualifies := func(pe, se Expr) bool {
		p, isPath := pe.(*Path)
		return isPath && p.IsPureSteps() &&
			se.ResultType() != TypeBoolean && q.Relev[se.ID()] == 0
	}
	if qualifies(e.L, e.R) {
		return e.L.(*Path), e.Op, true
	}
	if qualifies(e.R, e.L) {
		return e.R.(*Path), e.Op.Mirror(), true
	}
	return nil, 0, false
}

// BottomUpPath returns the location path π of an eligible bottom-up node
// (boolean(π) or π RelOp s) together with the scalar operand s and the
// operator; for boolean(π), s is nil. The caller must pass an ID from
// Query.BottomUp.
func (q *Query) BottomUpPath(id int) (pi *Path, op BinOp, scalar Expr) {
	switch e := q.Nodes[id].(type) {
	case *Call:
		return e.Args[0].(*Path), 0, nil
	case *Binary:
		p, op, ok := q.bottomUpOperands(e)
		if !ok {
			break
		}
		if p == e.L {
			return p, op, e.R
		}
		return p, op, e.L
	}
	panic("syntax: BottomUpPath: node is not a bottom-up path expression")
}
