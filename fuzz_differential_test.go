package xpath

// Randomized differential testing: all seven engines evaluate generated
// (query, document) pairs and any disagreement fails the suite. The
// generator (internal/fuzzgen) is seeded, so a failure reproduces from the
// printed pair seed alone. This is the hardening harness for the
// concurrency work: the batch and parallel evaluators reuse the engines
// verified here, and the parallel split (internal/store.SplitQuery) is
// additionally cross-checked against serial evaluation on every pair.

import (
	"math/rand"
	"testing"

	"repro/internal/fuzzgen"
	"repro/internal/store"
	"repro/internal/workload"
)

// fuzzPairs returns how many generated pairs to run: ≥ 500 in full mode
// (the acceptance bar of the differential harness), a fast subset under
// -short for CI's race job.
func fuzzPairs() int {
	if testing.Short() {
		return 120
	}
	return 600
}

// fuzzSeed pins the suite: CI runs a fixed, reproducible workload.
const fuzzSeed = 20260729

// TestDifferentialFuzz runs the randomized cross-engine agreement suite.
// Documents are regenerated every few pairs so both query and document
// shapes vary; each pair is checked from the document root and from a
// random id-bearing context node.
func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(fuzzSeed))
	pairs := fuzzPairs()
	var doc *Document
	var ids []string
	for i := 0; i < pairs; i++ {
		if i%10 == 0 {
			// Sizes follow the E13 harness: the full engine set includes the
			// strict bottom-up E↑ and the exponential naive strategy, whose
			// superpolynomial growth dominates past ~60 nodes.
			size := 20 + rng.Intn(40)
			tree := fuzzgen.Document(rng, size)
			doc = WrapTree(tree)
			ids = ids[:0]
			for _, n := range tree.Nodes() {
				if id, ok := n.Attr("id"); ok {
					ids = append(ids, id)
				}
			}
		}
		src := fuzzgen.Query(rng, fuzzgen.Config{})
		agree(t, doc, src, "")
		if len(ids) > 0 && rng.Intn(3) == 0 {
			agree(t, doc, src, ids[rng.Intn(len(ids))])
		}
		if t.Failed() {
			t.Fatalf("disagreement at pair %d (suite seed %d)", i, fuzzSeed)
		}
	}
}

// TestDifferentialFuzzAxisChains holds the fused set-at-a-time axis+test
// kernels (corexpath, compiled, and the core engines' step images) to the
// unfused candidate-list engines (topdown, bottomup, naive) on long
// generated chains that mix all twelve axes with name and node-test
// combinations — the workload shape where the flat-topology kernels carry
// the whole evaluation.
func TestDifferentialFuzzAxisChains(t *testing.T) {
	rng := rand.New(rand.NewSource(fuzzSeed + 3))
	pairs := fuzzPairs() / 2
	var doc *Document
	var ids []string
	for i := 0; i < pairs; i++ {
		if i%10 == 0 {
			tree := fuzzgen.Document(rng, 20+rng.Intn(40))
			doc = WrapTree(tree)
			ids = ids[:0]
			for _, n := range tree.Nodes() {
				if id, ok := n.Attr("id"); ok {
					ids = append(ids, id)
				}
			}
		}
		src := fuzzgen.AxisChainQuery(rng)
		agree(t, doc, src, "")
		if len(ids) > 0 && rng.Intn(3) == 0 {
			agree(t, doc, src, ids[rng.Intn(len(ids))])
		}
		if t.Failed() {
			t.Fatalf("disagreement at axis-chain pair %d (suite seed %d): %s", i, fuzzSeed+3, src)
		}
	}
}

// TestDifferentialFuzzParallel cross-checks the parallel evaluator against
// serial evaluation on generated pairs — the split/merge logic, the
// fallback gates and the document-order merge all ride the same check.
func TestDifferentialFuzzParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(fuzzSeed + 1))
	pairs := fuzzPairs() / 2
	var doc *Document
	for i := 0; i < pairs; i++ {
		if i%10 == 0 {
			doc = WrapTree(fuzzgen.Document(rng, 40+rng.Intn(150)))
		}
		src := fuzzgen.Query(rng, fuzzgen.Config{})
		q, err := Compile(src)
		if err != nil {
			t.Fatalf("pair %d: compile %q: %v", i, src, err)
		}
		ref, err := q.Evaluate(doc)
		if err != nil {
			t.Fatalf("pair %d: serial %q: %v", i, src, err)
		}
		workers := 2 + rng.Intn(4)
		got, err := q.EvaluateParallel(doc, ParallelOptions{Workers: workers})
		if err != nil {
			t.Fatalf("pair %d: parallel %q: %v", i, src, err)
		}
		if !sameResult(ref, got) {
			t.Fatalf("pair %d: parallel(%d) disagrees on %q:\n  serial:   %s\n  parallel: %s",
				i, workers, src, ref, got)
		}
	}
}

// TestDifferentialFuzzBatch runs generated queries across a store corpus
// with several worker counts and requires byte-identical batches.
func TestDifferentialFuzzBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(fuzzSeed + 2))
	st := NewStore()
	docs := 24
	for i := 0; i < docs; i++ {
		if err := st.Add(string(rune('a'+i%26))+"-doc", WrapTree(fuzzgen.Document(rng, 30+rng.Intn(90)))); err != nil {
			t.Fatal(err)
		}
	}
	queries := fuzzPairs() / 10
	for i := 0; i < queries; i++ {
		src := fuzzgen.Query(rng, fuzzgen.Config{})
		ref, err := st.Query(src, BatchOptions{Workers: 1})
		if err != nil {
			t.Fatalf("query %d: %q: %v", i, src, err)
		}
		for _, workers := range []int{3, 8} {
			got, err := st.Query(src, BatchOptions{Workers: workers, Engine: EngineCompiled})
			if err != nil {
				t.Fatalf("query %d: %q workers=%d: %v", i, src, workers, err)
			}
			if len(got.Docs) != len(ref.Docs) {
				t.Fatalf("query %d: batch sizes differ", i)
			}
			for j := range got.Docs {
				if got.Docs[j].ID != ref.Docs[j].ID {
					t.Fatalf("query %d: order differs at %d", i, j)
				}
				if (got.Docs[j].Err == nil) != (ref.Docs[j].Err == nil) {
					t.Fatalf("query %d doc %s: error mismatch: %v vs %v",
						i, ref.Docs[j].ID, got.Docs[j].Err, ref.Docs[j].Err)
				}
				if got.Docs[j].Err == nil && !sameResult(ref.Docs[j].Result, got.Docs[j].Result) {
					t.Fatalf("query %d doc %s on %q:\n  serial: %s\n  batch:  %s",
						i, ref.Docs[j].ID, src, ref.Docs[j].Result, got.Docs[j].Result)
				}
			}
		}
	}
}

// TestSplitQueryAgreesOnWorkloads pins the split decomposition against the
// curated workload queries as well (the fuzz generator's distribution is
// not guaranteed to cover every hand-written shape).
func TestSplitQueryAgreesOnWorkloads(t *testing.T) {
	doc := WrapTree(workload.Scaled(600))
	srcs := append(append(append([]string{},
		workload.CoreQueries()...), workload.WadlerQueries()...), workload.FullXPathQueries()...)
	srcs = append(srcs, workload.PositionHeavy(), workload.MixedQuery())
	for _, src := range srcs {
		q := MustCompile(src)
		ref, err := q.Evaluate(doc)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got, err := q.EvaluateParallel(doc, ParallelOptions{Workers: 4})
		if err != nil {
			t.Fatalf("%q parallel: %v", src, err)
		}
		if !sameResult(ref, got) {
			t.Errorf("%q: parallel %s vs serial %s", src, got, ref)
		}
	}
	// The split itself must refuse non-partitionable roots.
	if _, _, ok := store.SplitQuery(MustCompile(`count(//c)`).q); ok {
		t.Error("SplitQuery accepted a scalar root")
	}
}
