// Command xpathserve serves XPath evaluation over HTTP: the query-service
// front-end on top of the document store, with bounded admission in front
// of the Gottlob/Koch/Pichler engines.
//
//	xpathserve -store corpus/ -addr :8080 -workers 4 -queue 64
//	xpathserve -data state/ -addr :8080
//
// With -store the corpus is read-only at the persistence layer: a
// directory of *.xml files (keyed by file name) or a binary snapshot
// written by `xpath -savestore`. With -data the corpus is a durable
// mutable directory (checksummed snapshot + write-ahead log): it is
// recovered on start — a torn log tail from a crash truncates to the last
// durable prefix — and PUT/DELETE /doc/{id} mutations survive restarts.
// SIGTERM/SIGINT drains gracefully: admission stops (new requests answer
// 503), in-flight evaluations finish, the log is compacted into a fresh
// snapshot, then the listener closes.
//
// Endpoints: POST /query, POST /batch, GET /explain, GET /stats,
// GET /healthz, PUT/DELETE /doc/{id}, POST /snapshot — see the server
// package documentation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	xpath "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		storePath = flag.String("store", "", "read-only corpus: directory of *.xml files or a snapshot file")
		dataDir   = flag.String("data", "", "durable mutable corpus directory (snapshot + write-ahead log)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy for -data: always (every mutation) or never (OS-paced)")
		workers   = flag.Int("workers", 1, "admission worker pool size")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 2×workers); a full queue answers 429")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout (queue wait + evaluation); expiry cancels the evaluation")
		maxSteps  = flag.Int64("maxsteps", 0, "per-evaluation step fuel (0: unlimited); exhaustion answers 422")
		maxCard   = flag.Int("maxcard", 0, "per-evaluation result-cardinality cap (0: unlimited); exceeding answers 422")
		engName   = flag.String("engine", "auto", "default evaluation engine for requests that name none")
		drainWait = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	if err := run(*addr, *storePath, *dataDir, *fsync, *workers, *queue, *timeout, *maxSteps, *maxCard, *engName, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "xpathserve:", err)
		os.Exit(1)
	}
}

func run(addr, storePath, dataDir, fsync string, workers, queue int, timeout time.Duration, maxSteps int64, maxCard int, engName string, drainWait time.Duration) error {
	if (storePath == "") == (dataDir == "") {
		return errors.New("exactly one of -store (read-only corpus) or -data (durable directory) is required")
	}
	eng, ok := xpath.EngineByName(engName)
	if !ok {
		return fmt.Errorf("unknown engine %q", engName)
	}

	var st *xpath.Store
	var durable *xpath.DurableStore
	if dataDir != "" {
		var sync xpath.SyncPolicy
		switch fsync {
		case "always":
			sync = xpath.SyncAlways
		case "never":
			sync = xpath.SyncNever
		default:
			return fmt.Errorf("unknown -fsync policy %q (want always or never)", fsync)
		}
		var err error
		durable, err = xpath.OpenStore(dataDir, xpath.DurableOptions{Sync: sync})
		if err != nil {
			return err
		}
		defer durable.Close()
		st = durable.Store()
	} else {
		var err error
		st, err = server.LoadCorpus(storePath)
		if err != nil {
			return err
		}
	}

	srv := server.New(server.Config{
		Store:         st,
		Durable:       durable,
		Workers:       workers,
		QueueDepth:    queue,
		Timeout:       timeout,
		MaxSteps:      maxSteps,
		MaxResultCard: maxCard,
		DefaultEngine: eng,
	})
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		mode := "read-only"
		if durable != nil {
			mode = fmt.Sprintf("durable gen=%d fsync=%s", durable.Generation(), fsync)
		}
		log.Printf("serving %d documents on %s (workers=%d queue=%d engine=%s corpus=%s)",
			st.Len(), addr, workers, queue, eng, mode)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain order matters: stop admission first so the load balancer's
	// health checks fail and in-flight work finishes, then close the
	// listener beneath the drained connections, and only then — once no
	// mutation can still be in flight — fold the WAL into a fresh
	// snapshot so the next start recovers without replay.
	log.Printf("shutting down: draining admission queue")
	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	if durable != nil {
		if gen, err := durable.Compact(); err != nil {
			log.Printf("final compaction failed (WAL remains authoritative): %v", err)
		} else {
			log.Printf("compacted corpus at generation %d", gen)
		}
		if err := durable.Close(); err != nil {
			return err
		}
	}
	log.Printf("shutdown complete")
	return nil
}
