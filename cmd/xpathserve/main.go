// Command xpathserve serves XPath evaluation over HTTP: the query-service
// front-end on top of the document store, with bounded admission in front
// of the Gottlob/Koch/Pichler engines.
//
//	xpathserve -store corpus/ -addr :8080 -workers 4 -queue 64
//
// The corpus is a directory of *.xml files (keyed by file name) or a
// binary snapshot written by `xpath -savestore`. SIGTERM/SIGINT drains
// gracefully: admission stops (new requests answer 503), in-flight
// evaluations finish, then the listener closes.
//
// Endpoints: POST /query, POST /batch, GET /explain, GET /stats,
// GET /healthz — see the server package documentation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	xpath "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		storePath = flag.String("store", "", "corpus: directory of *.xml files or a snapshot file (required)")
		workers   = flag.Int("workers", 1, "admission worker pool size")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 2×workers); a full queue answers 429")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request timeout (queue wait + evaluation); expiry cancels the evaluation")
		maxSteps  = flag.Int64("maxsteps", 0, "per-evaluation step fuel (0: unlimited); exhaustion answers 422")
		maxCard   = flag.Int("maxcard", 0, "per-evaluation result-cardinality cap (0: unlimited); exceeding answers 422")
		engName   = flag.String("engine", "auto", "default evaluation engine for requests that name none")
		drainWait = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	if err := run(*addr, *storePath, *workers, *queue, *timeout, *maxSteps, *maxCard, *engName, *drainWait); err != nil {
		fmt.Fprintln(os.Stderr, "xpathserve:", err)
		os.Exit(1)
	}
}

func run(addr, storePath string, workers, queue int, timeout time.Duration, maxSteps int64, maxCard int, engName string, drainWait time.Duration) error {
	if storePath == "" {
		return errors.New("missing -store (directory of *.xml files or a snapshot file)")
	}
	eng, ok := xpath.EngineByName(engName)
	if !ok {
		return fmt.Errorf("unknown engine %q", engName)
	}
	st, err := server.LoadCorpus(storePath)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Store:         st,
		Workers:       workers,
		QueueDepth:    queue,
		Timeout:       timeout,
		MaxSteps:      maxSteps,
		MaxResultCard: maxCard,
		DefaultEngine: eng,
	})
	hs := &http.Server{Addr: addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %d documents on %s (workers=%d queue=%d engine=%s)",
			st.Len(), addr, workers, queue, eng)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain order matters: stop admission first so the load balancer's
	// health checks fail and in-flight work finishes, then close the
	// listener beneath the drained connections.
	log.Printf("shutting down: draining admission queue")
	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}
