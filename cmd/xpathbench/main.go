// Command xpathbench runs the experiments of EXPERIMENTS.md (E5–E20) and
// prints paper-style tables with fitted growth exponents:
//
//	xpathbench -exp all
//	xpathbench -exp e5,e7 -sizes 50,100,200 -reps 5
//
// Experiment identifiers follow DESIGN.md §2: E5 exponential blowup, E6/E7
// Theorem 7 time/space, E8 Theorem 10 (Extended Wadler), E9 Theorem 13
// (Core XPath), E10 Corollary 11, E11/E12 §3.1 ablations, E13 differential
// agreement, E14 compiled plans vs. interpretation, E15 parallel batch and
// single-document evaluation scaling, E16 flat-topology axis kernels
// before/after (with -e16-json emission), E17 observability-layer tracing
// off/on (with -e17-json emission, metrics registry snapshot embedded),
// E18 query-service synthetic load against the HTTP front-end (with
// -e18-json emission: status splits, cache-hit rate, queue histograms),
// E19 evaluation-budget pricing — nil vs live Budget overhead, fuel-trip
// classification, concurrent-cancel latency (with -e19-json emission),
// E20 durability pricing — WAL append overhead by sync policy against the
// in-memory baseline plus recovery time, WAL replay vs compacted-snapshot
// load (with -e20-json emission).
//
// -metrics-json additionally writes the process metrics registry —
// populated by whatever experiments ran — to a standalone JSON file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	xpath "repro"
	"repro/internal/bench"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiments (e5..e20) or 'all'")
		sizes   = flag.String("sizes", "", "comma-separated |D| sweep, e.g. 50,100,200,400")
		small   = flag.String("small-sizes", "", "comma-separated |D| sweep for E7/E11 (cubic-growth engines)")
		reps    = flag.Int("reps", 3, "repetitions per timing cell (best-of)")
		maxDbl  = flag.Int("max-doubling", 20, "last i of the E5 doubling-query family")
		e16json = flag.String("e16-json", "BENCH_E16.json", "output path for the E16 before/after rows (empty disables)")
		e17json = flag.String("e17-json", "BENCH_E17.json", "output path for the E17 tracing off/on rows (empty disables)")
		e18json = flag.String("e18-json", "BENCH_E18.json", "output path for the E18 query-service load rows (empty disables)")
		e19json = flag.String("e19-json", "BENCH_E19.json", "output path for the E19 budget-pricing rows (empty disables)")
		e20json = flag.String("e20-json", "BENCH_E20.json", "output path for the E20 durability-pricing rows (empty disables)")
		mjson   = flag.String("metrics-json", "", "write the process metrics registry as JSON to this file after the run")
	)
	flag.Parse()

	cfg := bench.Config{Reps: *reps, MaxDouble: *maxDbl}
	var err error
	if cfg.Sizes, err = parseSizes(*sizes); err != nil {
		fmt.Fprintln(os.Stderr, "xpathbench:", err)
		os.Exit(2)
	}
	if cfg.SmallSizes, err = parseSizes(*small); err != nil {
		fmt.Fprintln(os.Stderr, "xpathbench:", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *exps == "all" {
		bench.RunAll(w, cfg, *e16json, *e17json, *e18json, *e19json, *e20json)
		writeMetrics(w, *mjson)
		return
	}
	for _, name := range strings.Split(*exps, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "e5":
			bench.E5(cfg).Print(w)
		case "e6":
			bench.E6(cfg).Print(w)
		case "e7":
			bench.E7(cfg).Print(w)
		case "e8":
			for _, t := range bench.E8(cfg) {
				t.Print(w)
			}
		case "e9":
			for _, t := range bench.E9(cfg) {
				t.Print(w)
			}
		case "e10":
			bench.E10(cfg).Print(w)
		case "e11":
			bench.E11(cfg).Print(w)
		case "e12":
			bench.E12(cfg).Print(w)
		case "e13":
			bench.E13(cfg).Print(w)
		case "e14":
			for _, t := range bench.E14(cfg) {
				t.Print(w)
			}
		case "e15":
			for _, t := range bench.E15(cfg) {
				t.Print(w)
			}
		case "e16":
			t, rows := bench.E16(cfg)
			t.Print(w)
			if *e16json != "" {
				if err := bench.WriteE16JSON(*e16json, rows); err != nil {
					fmt.Fprintln(os.Stderr, "xpathbench: write E16 JSON:", err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *e16json)
			}
		case "e17":
			t, rows := bench.E17(cfg)
			t.Print(w)
			if *e17json != "" {
				if err := bench.WriteE17JSON(*e17json, rows); err != nil {
					fmt.Fprintln(os.Stderr, "xpathbench: write E17 JSON:", err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *e17json)
			}
		case "e18":
			t, rows := bench.E18(cfg)
			t.Print(w)
			if *e18json != "" {
				if err := bench.WriteE18JSON(*e18json, rows); err != nil {
					fmt.Fprintln(os.Stderr, "xpathbench: write E18 JSON:", err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *e18json)
			}
		case "e19":
			t, rows := bench.E19(cfg)
			t.Print(w)
			if *e19json != "" {
				if err := bench.WriteE19JSON(*e19json, rows); err != nil {
					fmt.Fprintln(os.Stderr, "xpathbench: write E19 JSON:", err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *e19json)
			}
		case "e20":
			t, rows := bench.E20(cfg)
			t.Print(w)
			if *e20json != "" {
				if err := bench.WriteE20JSON(*e20json, rows); err != nil {
					fmt.Fprintln(os.Stderr, "xpathbench: write E20 JSON:", err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *e20json)
			}
		default:
			fmt.Fprintf(os.Stderr, "xpathbench: unknown experiment %q (want e5..e20)\n", name)
			os.Exit(2)
		}
	}
	writeMetrics(w, *mjson)
}

// writeMetrics dumps the process metrics registry — populated by whatever
// experiments just ran — as a standalone JSON file.
func writeMetrics(w *os.File, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err == nil {
		err = xpath.WriteMetricsJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpathbench: write metrics JSON:", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "wrote %s\n", path)
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
