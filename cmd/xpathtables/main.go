// Command xpathtables prints the context-value tables of a query's parse
// tree, regenerating the paper's Figure 4 (full tables over the reachable
// contexts) and Figure 5 (tables reduced to the relevant context,
// Section 3.1).
//
//	xpathtables -fig4          # Figure 4 on the paper's document and query
//	xpathtables -fig5          # Figure 5 (reduced tables)
//	xpathtables -file doc.xml 'QUERY'   # reduced tables for any query
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/syntax"
	"repro/internal/values"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func main() {
	var (
		fig4 = flag.Bool("fig4", false, "print the Figure 4 tables (paper's document and query)")
		fig5 = flag.Bool("fig5", false, "print the Figure 5 reduced tables (paper's document and query)")
		tree = flag.Bool("tree", false, "print the parse tree (Figures 3 and 6)")
		dot  = flag.Bool("dot", false, "emit the parse tree as Graphviz DOT")
		file = flag.String("file", "", "XML document (default: the paper's Figure 2 document)")
	)
	flag.Parse()
	if err := run(*fig4, *fig5, *tree, *dot, *file, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "xpathtables:", err)
		os.Exit(1)
	}
}

const paperQuery = `/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]`

func run(fig4, fig5, tree, dot bool, file string, args []string) error {
	doc := workload.Figure2()
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		d, err := xmltree.Parse(f)
		if err != nil {
			return err
		}
		doc = d
	}
	src := paperQuery
	if len(args) == 1 {
		src = args[0]
	} else if len(args) > 1 {
		return fmt.Errorf("expected at most one query argument")
	}
	q, err := syntax.Compile(src)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\nnormalized: %s\nfragment: %s\n\n", src, q.Root, q.Fragment)

	if tree {
		fmt.Println("=== Parse tree (cf. Figures 3 and 6) ===")
		fmt.Print(q.TreeString())
		fmt.Println()
	}
	if dot {
		if err := q.WriteDot(os.Stdout); err != nil {
			return err
		}
	}
	if tree || dot {
		if !fig4 && !fig5 {
			return nil
		}
	}

	if fig4 || !fig5 && len(args) == 0 && file == "" {
		fmt.Println("=== Figure 4: context-value tables over reachable contexts ===")
		if err := printFullTables(q, doc); err != nil {
			return err
		}
	}
	if fig5 || len(args) == 1 || file != "" {
		fmt.Println("=== Figure 5: tables reduced to the relevant context (MINCONTEXT) ===")
		if err := printReducedTables(q, doc); err != nil {
			return err
		}
	}
	return nil
}

// nodeName renders a context node the way the paper's tables do.
func nodeName(n *xmltree.Node) string {
	if n.IsRoot() {
		return "/"
	}
	if id, ok := n.Attr("id"); ok {
		return "x" + id
	}
	return fmt.Sprintf("%s@%d", n.Label(), n.Pre())
}

// printFullTables reproduces Figure 4: it walks the outermost location
// path, collects the contexts 〈cn, cp, cs〉 reachable at each predicate,
// and evaluates every subexpression of the predicate at those contexts.
func printFullTables(q *syntax.Query, doc *xmltree.Document) error {
	p, ok := q.Root.(*syntax.Path)
	if !ok {
		return fmt.Errorf("-fig4 requires a location-path query")
	}
	ne := naive.New()

	cur := xmltree.Singleton(doc.Root())
	if !p.Abs {
		cur = xmltree.Singleton(doc.Root())
	}
	for si, step := range p.Steps {
		next := xmltree.NewSet(doc)
		var ctxs []engine.Context
		cur.ForEach(func(x *xmltree.Node) {
			cands := engine.Candidates(step.Axis, step.Test, x, nil)
			for _, pred := range step.Preds {
				m := len(cands)
				kept := cands[:0]
				for j, z := range cands {
					ctxs = append(ctxs, engine.Context{Node: z, Pos: j + 1, Size: m})
					pq := subQuery(q, pred)
					v, _, err := ne.Evaluate(pq, doc, engine.Context{Node: z, Pos: j + 1, Size: m})
					if err != nil {
						panic(err)
					}
					if values.ToBool(v) {
						kept = append(kept, z)
					}
				}
				cands = kept
			}
			for _, z := range cands {
				next.Add(z)
			}
		})
		fmt.Printf("step %d: %s  →  result set %s\n", si+1, step, next)
		for _, pred := range step.Preds {
			printPredSubtree(q, pred, doc, ctxs, ne)
		}
		cur = next
	}
	fmt.Println()
	return nil
}

// printPredSubtree prints the table of every node in a predicate subtree
// over the given contexts.
func printPredSubtree(q *syntax.Query, pred syntax.Expr, doc *xmltree.Document, ctxs []engine.Context, ne *naive.Engine) {
	var walk func(e syntax.Expr)
	walk = func(e syntax.Expr) {
		fmt.Printf("\n  table for N%d:  %s   (Relev = %s)\n", e.ID(), e, q.Relev[e.ID()])
		fmt.Printf("    %-6s %-4s %-4s  %s\n", "cn", "cp", "cs", "res")
		for _, c := range ctxs {
			sq := subQuery(q, e)
			v, _, err := ne.Evaluate(sq, doc, c)
			if err != nil {
				panic(err)
			}
			fmt.Printf("    %-6s %-4d %-4d  %s\n", nodeName(c.Node), c.Pos, c.Size, values.Render(v))
		}
		for _, ch := range childrenOf(e) {
			walk(ch)
		}
	}
	walk(pred)
}

func childrenOf(e syntax.Expr) []syntax.Expr {
	switch e := e.(type) {
	case *syntax.Binary:
		return []syntax.Expr{e.L, e.R}
	case *syntax.Negate:
		return []syntax.Expr{e.E}
	case *syntax.Call:
		return e.Args
	}
	return nil
}

// subQuery wraps a subexpression as a standalone compiled query so the
// naive engine can evaluate it in isolation. Relev and IDs carry over.
func subQuery(q *syntax.Query, e syntax.Expr) *syntax.Query {
	return &syntax.Query{Source: e.String(), Root: e, Nodes: q.Nodes, Relev: q.Relev}
}

// printReducedTables runs MINCONTEXT with the dump hook and prints the
// reduced tables of Figure 5. (Plain MINCONTEXT rather than OPTMINCONTEXT:
// the bottom-up pass of the latter replaces inner-path tables with boolean
// tables, whereas Figure 5 shows the MINCONTEXT shape.)
func printReducedTables(q *syntax.Query, doc *xmltree.Document) error {
	eng := core.NewMinContext()
	v, dumps, err := eng.EvaluateWithDump(q, doc, engine.RootContext(doc))
	if err != nil {
		return err
	}
	for _, d := range dumps {
		rel := d.Relev.String()
		fmt.Printf("\n  table for N%d:  %s   (Relev = %s, %d row(s))\n", d.NodeID, d.Expr, rel, len(d.Rows))
		for _, r := range d.Rows {
			cn := "*"
			if r.CN >= 0 {
				cn = nodeName(doc.Node(r.CN))
			}
			val := r.Value
			if len(val) > 70 {
				val = val[:67] + "..."
			}
			fmt.Printf("    %-6s  %s\n", cn, val)
		}
	}
	fmt.Printf("\nresult: %s\n", values.Render(v))
	if strings.TrimSpace(values.Render(v)) == "" {
		fmt.Println("(empty)")
	}
	return nil
}
