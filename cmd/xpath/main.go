// Command xpath evaluates an XPath 1.0 expression against an XML document
// with a selectable evaluation engine:
//
//	xpath -engine optmincontext -file doc.xml '//b[c = 100]'
//	cat doc.xml | xpath '/descendant::d'
//
// The -stats flag prints the engine's instrumentation counters (table
// cells, single-context evaluations, axis calls) after the result,
// -fragment prints the query's fragment classification (Core XPath /
// Extended Wadler / full XPath 1.0), and -explain prints both the
// OPTMINCONTEXT evaluation plan and the EngineCompiled instruction listing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	xpath "repro"
)

func main() {
	var (
		engineName = flag.String("engine", "auto", "evaluation engine: auto|optmincontext|mincontext|topdown|bottomup|corexpath|naive|compiled")
		file       = flag.String("file", "", "XML document (default: stdin)")
		contextID  = flag.String("context", "", "id attribute of the context node (default: document root)")
		stats      = flag.Bool("stats", false, "print evaluation statistics")
		fragment   = flag.Bool("fragment", false, "print the query's fragment classification")
		normalized = flag.Bool("normalized", false, "print the normalized (unabbreviated) query")
		explain    = flag.Bool("explain", false, "print the OPTMINCONTEXT evaluation plan and the compiled instruction listing")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xpath [flags] <query>\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *engineName, *file, *contextID, *stats, *fragment, *normalized, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "xpath:", err)
		os.Exit(1)
	}
}

func run(querySrc, engineName, file, contextID string, stats, fragment, normalized, explain bool) error {
	eng, ok := xpath.EngineByName(engineName)
	if !ok {
		return fmt.Errorf("unknown engine %q", engineName)
	}

	var in io.Reader = os.Stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	doc, err := xpath.ParseDocument(in)
	if err != nil {
		return err
	}

	q, err := xpath.Compile(querySrc)
	if err != nil {
		return err
	}
	if normalized {
		fmt.Println("normalized:", q.String())
	}
	if fragment {
		fmt.Println("fragment:", q.Fragment())
	}
	if explain {
		fmt.Print(q.Explain())
		fmt.Print(q.ExplainPlan())
	}

	opts := xpath.Options{Engine: eng}
	if contextID != "" {
		opts.ContextNode = doc.ByID(contextID)
		if opts.ContextNode == nil {
			return fmt.Errorf("no node with id %q", contextID)
		}
	}
	res, err := q.EvaluateWith(doc, opts)
	if err != nil {
		return err
	}

	if res.IsNodeSet() {
		nodes := res.Nodes()
		fmt.Printf("%d node(s)\n", len(nodes))
		for _, n := range nodes {
			val := strings.TrimSpace(n.StringValue())
			if len(val) > 60 {
				val = val[:57] + "..."
			}
			fmt.Printf("  %-12s %s\n", n, val)
		}
	} else {
		fmt.Println(res.Text())
	}
	if stats {
		s := res.Stats()
		fmt.Printf("stats: cells=%d contexts=%d axis-calls=%d\n",
			s.TableCells, s.ContextsEvaluated, s.AxisCalls)
	}
	return nil
}
