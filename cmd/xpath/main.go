// Command xpath evaluates an XPath 1.0 expression against an XML document
// with a selectable evaluation engine:
//
//	xpath -engine optmincontext -file doc.xml '//b[c = 100]'
//	cat doc.xml | xpath '/descendant::d'
//
// The -stats flag prints the engine's instrumentation counters (table
// cells, single-context evaluations, axis calls) after the result,
// -fragment prints the query's fragment classification (Core XPath /
// Extended Wadler / full XPath 1.0), and -explain prints both the
// OPTMINCONTEXT evaluation plan and the EngineCompiled instruction listing.
//
// Batch mode evaluates one query across a whole corpus on a worker pool:
//
//	xpath -store corpus-dir -workers 8 '//b[d = 100]/child::c'
//	xpath -store corpus.xpc -savestore corpus2.xpc 'count(//c)'
//
// -store names either a directory (every *.xml file becomes one document,
// keyed by file name) or a corpus snapshot file written by -savestore.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	xpath "repro"
)

func main() {
	var (
		engineName = flag.String("engine", "auto", "evaluation engine: auto|optmincontext|mincontext|topdown|bottomup|corexpath|naive|compiled")
		file       = flag.String("file", "", "XML document (default: stdin)")
		contextID  = flag.String("context", "", "id attribute of the context node (default: document root)")
		stats      = flag.Bool("stats", false, "print evaluation statistics")
		fragment   = flag.Bool("fragment", false, "print the query's fragment classification")
		normalized = flag.Bool("normalized", false, "print the normalized (unabbreviated) query")
		explain    = flag.Bool("explain", false, "print the OPTMINCONTEXT evaluation plan and the compiled instruction listing")
		analyze    = flag.Bool("analyze", false, "EXPLAIN ANALYZE: run the query traced and print the instruction listing annotated with observed calls, cardinalities and timings (batch mode: print the aggregated evaluation trace)")
		metricsOut = flag.Bool("metrics", false, "print the process metrics registry after the run")
		storePath  = flag.String("store", "", "corpus: directory of *.xml files, or a corpus snapshot file (batch mode)")
		workers    = flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
		saveStore  = flag.String("savestore", "", "write the loaded corpus as a snapshot to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xpath [flags] <query>\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *storePath != "" {
		if *file != "" || *contextID != "" {
			err = fmt.Errorf("-store is incompatible with -file and -context")
		} else if *explain || *fragment || *normalized {
			err = fmt.Errorf("-store is incompatible with the single-document flags -explain, -fragment and -normalized")
		} else {
			err = runBatch(flag.Arg(0), *engineName, *storePath, *saveStore, *workers, *stats, *analyze)
		}
	} else if *saveStore != "" {
		err = fmt.Errorf("-savestore requires -store")
	} else {
		err = run(flag.Arg(0), *engineName, *file, *contextID, *stats, *fragment, *normalized, *explain, *analyze)
	}
	if *metricsOut {
		fmt.Println("metrics:")
		if werr := xpath.WriteMetricsText(os.Stdout); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xpath:", err)
		os.Exit(1)
	}
}

// loadStore builds the corpus: from a snapshot file, or from every *.xml
// file of a directory (keyed by file name).
func loadStore(path string) (*xpath.Store, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return xpath.LoadStore(f)
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	st := xpath.NewStore()
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := os.Open(filepath.Join(path, name))
		if err != nil {
			return nil, err
		}
		doc, err := xpath.ParseDocument(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if err := st.Add(name, doc); err != nil {
			return nil, err
		}
	}
	if st.Len() == 0 {
		return nil, fmt.Errorf("%s: no *.xml files", path)
	}
	return st, nil
}

func runBatch(querySrc, engineName, storePath, saveStore string, workers int, stats, analyze bool) error {
	eng, ok := xpath.EngineByName(engineName)
	if !ok {
		return fmt.Errorf("unknown engine %q", engineName)
	}
	st, err := loadStore(storePath)
	if err != nil {
		return err
	}
	if saveStore != "" {
		f, err := os.Create(saveStore)
		if err != nil {
			return err
		}
		if err := st.WriteSnapshot(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved %d document(s) to %s\n", st.Len(), saveStore)
	}
	var rec *xpath.TraceRecorder
	opts := xpath.BatchOptions{Engine: eng, Workers: workers}
	if analyze {
		rec = xpath.NewTraceRecorder()
		opts.Tracer = rec
	}
	batch, err := st.Query(querySrc, opts)
	if err != nil {
		return err
	}
	for _, dr := range batch.Docs {
		if dr.Err != nil {
			fmt.Printf("%-20s error: %v\n", dr.ID, dr.Err)
			continue
		}
		if dr.Result.IsNodeSet() {
			fmt.Printf("%-20s %d node(s)\n", dr.ID, len(dr.Result.Nodes()))
		} else {
			fmt.Printf("%-20s %s\n", dr.ID, dr.Result.Text())
		}
	}
	fmt.Printf("%d document(s), %d error(s)\n", len(batch.Docs), batch.Errs())
	if rec != nil {
		fmt.Print(xpath.RenderTrace(rec.Rows()))
	}
	if stats {
		s := batch.Stats()
		fmt.Printf("stats: cells=%d contexts=%d axis-calls=%d\n",
			s.TableCells, s.ContextsEvaluated, s.AxisCalls)
	}
	if n := batch.Errs(); n > 0 {
		return fmt.Errorf("%d of %d document(s) failed", n, len(batch.Docs))
	}
	return nil
}

func run(querySrc, engineName, file, contextID string, stats, fragment, normalized, explain, analyze bool) error {
	eng, ok := xpath.EngineByName(engineName)
	if !ok {
		return fmt.Errorf("unknown engine %q", engineName)
	}

	var in io.Reader = os.Stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	doc, err := xpath.ParseDocument(in)
	if err != nil {
		return err
	}

	q, err := xpath.Compile(querySrc)
	if err != nil {
		return err
	}
	if normalized {
		fmt.Println("normalized:", q.String())
	}
	if fragment {
		fmt.Println("fragment:", q.Fragment())
	}
	if explain {
		fmt.Print(q.Explain())
		fmt.Print(q.ExplainPlan())
	}
	if analyze {
		out, err := q.ExplainAnalyze(doc)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}

	opts := xpath.Options{Engine: eng}
	if contextID != "" {
		opts.ContextNode = doc.ByID(contextID)
		if opts.ContextNode == nil {
			return fmt.Errorf("no node with id %q", contextID)
		}
	}
	res, err := q.EvaluateWith(doc, opts)
	if err != nil {
		return err
	}

	if res.IsNodeSet() {
		nodes := res.Nodes()
		fmt.Printf("%d node(s)\n", len(nodes))
		for _, n := range nodes {
			val := strings.TrimSpace(n.StringValue())
			if len(val) > 60 {
				val = val[:57] + "..."
			}
			fmt.Printf("  %-12s %s\n", n, val)
		}
	} else {
		fmt.Println(res.Text())
	}
	if stats {
		s := res.Stats()
		fmt.Printf("stats: cells=%d contexts=%d axis-calls=%d\n",
			s.TableCells, s.ContextsEvaluated, s.AxisCalls)
	}
	return nil
}
