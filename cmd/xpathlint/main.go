// Command xpathlint runs the repository's invariant analyzers (package
// internal/lint) over Go packages, go vet style:
//
//	go run ./cmd/xpathlint ./...
//	go run ./cmd/xpathlint -checks noalloc,tracerguard ./internal/plan
//
// It prints one file:line:col: analyzer: message line per finding and
// exits 1 when anything is found, so CI can gate on it directly. The
// -json flag emits the findings as a JSON array instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		checks   = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		listOnly = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		named, ok := lint.ByName(strings.Split(*checks, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "xpathlint: unknown analyzer in -checks=%s (try -list)\n", *checks)
			os.Exit(2)
		}
		analyzers = named
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if diags == nil {
		diags = []lint.Diagnostic{} // a clean run is [], not null
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "xpathlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xpathlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
